"""Propagation of noise-symbol PDFs through symbolic expressions.

Two propagators are provided:

* :class:`CartesianPropagator` — the algorithm of Section 4 of the paper.
  Every symbol's PDF is discretized into ``g`` bins; the Cartesian
  product of bins is enumerated; each combination fixes one sub-interval
  per symbol, so the expression is evaluated once per combination with
  interval arithmetic (repeated occurrences of a symbol therefore stay
  consistent inside a combination); the combination probability is the
  product of the bin probabilities; and the resulting weighted intervals
  are collected into the output histogram.  Accuracy grows with ``g`` at
  ``g**N`` cost — exactly the granularity/overhead trade-off the paper
  discusses around Table 2.

* :class:`SequentialPropagator` — evaluates the expression directly in
  histogram arithmetic, i.e. operand distributions are combined operation
  by operation under an independence assumption.  It is much cheaper but
  ignores dependencies between repeated symbols, which makes it the
  natural ablation against the Cartesian algorithm.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.errors import ExpressionError, HistogramError
from repro.histogram.pdf import HistogramPDF
from repro.histogram.statistics import HistogramStats, summarize
from repro.intervals.interval import Interval
from repro.symbols.expression import Expression, Polynomial, RationalExpression
from repro.symbols.noise_symbol import SymbolTable

__all__ = ["PropagationResult", "CartesianPropagator", "SequentialPropagator"]

#: Default ceiling on the number of Cartesian combinations; prevents an
#: accidental ``g ** N`` explosion from freezing an analysis run.
DEFAULT_MAX_COMBINATIONS = 2_000_000

EvaluatableExpression = Expression | Polynomial | RationalExpression


@dataclass(frozen=True)
class PropagationResult:
    """Output of a propagation run: the PDF plus its summary statistics."""

    pdf: HistogramPDF
    stats: HistogramStats
    combinations: int
    granularity: int

    @property
    def bounds(self) -> Interval:
        """Error bounds implied by the output PDF."""
        return self.stats.bounds

    @property
    def mean(self) -> float:
        """Mean of the output distribution."""
        return self.stats.mean

    @property
    def variance(self) -> float:
        """Variance of the output distribution."""
        return self.stats.variance

    @property
    def noise_power(self) -> float:
        """Second raw moment of the output distribution."""
        return self.stats.noise_power


def _count_combinations(bin_counts: list[int]) -> int:
    total = 1
    for count in bin_counts:
        total *= count
    return total


class CartesianPropagator:
    """The SNA Cartesian-product-of-bins propagation algorithm."""

    def __init__(
        self,
        granularity: int = 16,
        output_bins: int | None = None,
        max_combinations: int = DEFAULT_MAX_COMBINATIONS,
    ) -> None:
        if granularity < 1:
            raise HistogramError(f"granularity must be >= 1, got {granularity}")
        self.granularity = int(granularity)
        self.output_bins = int(output_bins) if output_bins is not None else int(granularity)
        self.max_combinations = int(max_combinations)

    # ------------------------------------------------------------------ #
    def propagate(
        self,
        expression: EvaluatableExpression,
        symbols: SymbolTable | Mapping[str, HistogramPDF],
        granularity: int | None = None,
        output_bins: int | None = None,
    ) -> PropagationResult:
        """Propagate symbol PDFs through ``expression``.

        Parameters
        ----------
        expression:
            An :class:`Expression`, :class:`Polynomial` or
            :class:`RationalExpression` whose free symbols are all present
            in ``symbols``.
        symbols:
            The noise symbols with their PDFs (a :class:`SymbolTable` or a
            plain mapping of name to :class:`HistogramPDF`).
        granularity, output_bins:
            Optional per-call overrides of the constructor settings.
        """
        g = int(granularity) if granularity is not None else self.granularity
        out_bins = int(output_bins) if output_bins is not None else max(self.output_bins, g)

        pdfs = symbols.pdfs() if isinstance(symbols, SymbolTable) else dict(symbols)
        required = expression.symbols()
        missing = sorted(required - set(pdfs))
        if missing:
            raise ExpressionError(f"missing PDFs for symbols: {', '.join(missing)}")

        names = sorted(required)
        if not names:
            # Constant expression: evaluate once with empty environment.
            value = float(expression.evaluate({}))
            pdf = HistogramPDF.point(value)
            return PropagationResult(pdf, summarize(pdf), combinations=1, granularity=g)

        discretized = [pdfs[name].rebin(g) for name in names]
        bin_counts = [pdf.nbins for pdf in discretized]
        combinations = _count_combinations(bin_counts)
        if combinations > self.max_combinations:
            raise HistogramError(
                f"Cartesian propagation would need {combinations} combinations for "
                f"{len(names)} symbols at granularity {g}; limit is {self.max_combinations}. "
                "Reduce the granularity, group symbols, or use SequentialPropagator."
            )

        per_symbol_cells: list[list[tuple[Interval, float]]] = []
        for pdf in discretized:
            cells = [
                (Interval(float(a), float(b)), float(p))
                for a, b, p in zip(pdf.edges[:-1], pdf.edges[1:], pdf.probs)
                if p > 0.0
            ]
            per_symbol_cells.append(cells)

        lows: list[float] = []
        highs: list[float] = []
        probs: list[float] = []
        for combo in itertools.product(*per_symbol_cells):
            probability = 1.0
            env: dict[str, Interval] = {}
            for name, (cell, p) in zip(names, combo):
                probability *= p
                env[name] = cell
            if probability <= 0.0:
                continue
            result = expression.evaluate(env)
            if isinstance(result, Interval):
                lows.append(result.lo)
                highs.append(result.hi)
            else:
                value = float(result)
                lows.append(value)
                highs.append(value)
            probs.append(probability)

        if not probs:
            raise HistogramError("no probability mass survived propagation")

        lo_arr = np.asarray(lows)
        hi_arr = np.asarray(highs)
        prob_arr = np.asarray(probs)
        hull_lo = float(lo_arr.min())
        hull_hi = float(hi_arr.max())
        if hull_hi <= hull_lo:
            pdf = HistogramPDF.point(hull_lo)
        else:
            edges = np.linspace(hull_lo, hull_hi, out_bins + 1)
            from repro.histogram.arithmetic import spread_intervals

            pdf = HistogramPDF(edges, spread_intervals(lo_arr, hi_arr, prob_arr, edges))
        return PropagationResult(pdf, summarize(pdf), combinations=len(probs), granularity=g)

    # ------------------------------------------------------------------ #
    def granularity_sweep(
        self,
        expression: EvaluatableExpression,
        symbols: SymbolTable | Mapping[str, HistogramPDF],
        granularities: list[int],
    ) -> dict[int, PropagationResult]:
        """Run :meth:`propagate` for each granularity (Table 2's sweep)."""
        results: dict[int, PropagationResult] = {}
        for g in granularities:
            results[int(g)] = self.propagate(expression, symbols, granularity=int(g))
        return results

    def estimated_combinations(self, symbol_count: int, granularity: int | None = None) -> int:
        """``g ** N`` — the cost of a propagation before running it."""
        g = granularity if granularity is not None else self.granularity
        return int(math.pow(g, symbol_count))


class SequentialPropagator:
    """Operation-by-operation histogram propagation (independence assumed)."""

    def __init__(self, output_bins: int = 64) -> None:
        if output_bins < 1:
            raise HistogramError(f"output_bins must be >= 1, got {output_bins}")
        self.output_bins = int(output_bins)

    def propagate(
        self,
        expression: EvaluatableExpression,
        symbols: SymbolTable | Mapping[str, HistogramPDF],
        granularity: int | None = None,
    ) -> PropagationResult:
        """Evaluate ``expression`` directly in histogram arithmetic.

        Every symbol occurrence is treated as an independent draw from its
        PDF, so dependencies between repeated symbols are lost — the
        resulting bounds are generally wider than the Cartesian
        propagation but never narrower than reality for expressions where
        repeated symbols only appear in additive sub-terms.
        """
        pdfs = symbols.pdfs() if isinstance(symbols, SymbolTable) else dict(symbols)
        required = expression.symbols()
        missing = sorted(required - set(pdfs))
        if missing:
            raise ExpressionError(f"missing PDFs for symbols: {', '.join(missing)}")
        env: dict[str, HistogramPDF] = {}
        for name in required:
            pdf = pdfs[name]
            env[name] = pdf.rebin(granularity) if granularity else pdf
        result = expression.evaluate(env)
        if not isinstance(result, HistogramPDF):
            result = HistogramPDF.point(float(result))
        if result.nbins > self.output_bins:
            result = result.rebin(self.output_bins)
        return PropagationResult(
            result,
            summarize(result),
            combinations=result.nbins,
            granularity=granularity
            or max((pdf.nbins for pdf in env.values()), default=result.nbins),
        )
