"""Noise symbols, symbolic expressions and the SNA propagation algorithm.

This package implements Section 4 of the paper:

* :class:`NoiseSymbol` — a bounded random value with an arbitrary
  histogram PDF (the ``eps_i`` of Equation (1));
* :class:`Expression` / :class:`Polynomial` / :class:`RationalExpression`
  — the "fractional function of polynomials" that relates a datapath
  value to its noise symbols;
* :class:`CartesianPropagator` — the Cartesian-product-of-bins algorithm
  that turns symbol PDFs into the output PDF (the SNA core);
* :class:`SequentialPropagator` — node-by-node histogram arithmetic,
  cheaper but blind to dependencies, used for ablation comparisons.
"""

from repro.symbols.cartesian import CartesianPropagator, PropagationResult, SequentialPropagator
from repro.symbols.expression import Constant, Expression, Polynomial, RationalExpression, Symbol
from repro.symbols.noise_symbol import NoiseSymbol, SymbolTable

__all__ = [
    "NoiseSymbol",
    "SymbolTable",
    "Expression",
    "Symbol",
    "Constant",
    "Polynomial",
    "RationalExpression",
    "CartesianPropagator",
    "SequentialPropagator",
    "PropagationResult",
]
