"""Symbolic expressions over noise symbols.

Equation (1) of the paper writes an uncertain value as a *fractional
function of polynomials* in the noise symbols.  This module provides
three cooperating representations:

* :class:`Expression` — an operator-overloaded expression tree.  It can be
  evaluated in any algebra that supports ``+ - * / **`` with Python
  numbers (floats, :class:`~repro.intervals.interval.Interval`,
  :class:`~repro.intervals.affine.AffineForm`,
  :class:`~repro.intervals.taylor.TaylorModel`,
  :class:`~repro.histogram.pdf.HistogramPDF`), which is how the same
  symbolic description feeds IA, AA, Taylor and SNA analyses.
* :class:`Polynomial` — a canonical expanded multivariate polynomial,
  used when a closed normal form is preferable (step 2 of the SNA
  algorithm: "polynomial operations to build up the output error
  relationship with the noise symbol sources").
* :class:`RationalExpression` — a ratio of two polynomials, produced when
  an expression contains division by a non-constant.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, Mapping, Tuple, Union

from repro.errors import ExpressionError

__all__ = [
    "Expression",
    "Symbol",
    "Constant",
    "Polynomial",
    "RationalExpression",
    "as_expression",
]

Number = Union[int, float]
Monomial = Tuple[Tuple[str, int], ...]


def as_expression(value: "Expression | Number") -> "Expression":
    """Coerce a number into a :class:`Constant` expression."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, (int, float)):
        return Constant(float(value))
    raise ExpressionError(f"cannot interpret {type(value).__name__} as an expression")


class Expression:
    """Base class of the expression tree (immutable nodes)."""

    # -- building ------------------------------------------------------- #
    def __add__(self, other: "Expression | Number") -> "Expression":
        return Add(self, as_expression(other))

    def __radd__(self, other: "Expression | Number") -> "Expression":
        return Add(as_expression(other), self)

    def __sub__(self, other: "Expression | Number") -> "Expression":
        return Sub(self, as_expression(other))

    def __rsub__(self, other: "Expression | Number") -> "Expression":
        return Sub(as_expression(other), self)

    def __mul__(self, other: "Expression | Number") -> "Expression":
        return Mul(self, as_expression(other))

    def __rmul__(self, other: "Expression | Number") -> "Expression":
        return Mul(as_expression(other), self)

    def __truediv__(self, other: "Expression | Number") -> "Expression":
        return Div(self, as_expression(other))

    def __rtruediv__(self, other: "Expression | Number") -> "Expression":
        return Div(as_expression(other), self)

    def __neg__(self) -> "Expression":
        return Neg(self)

    def __pow__(self, exponent: int) -> "Expression":
        if not isinstance(exponent, int) or exponent < 0:
            raise ExpressionError(
                f"only non-negative integer powers are supported, got {exponent!r}"
            )
        return Pow(self, exponent)

    # -- analysis ------------------------------------------------------- #
    def symbols(self) -> frozenset[str]:
        """All symbol names appearing in the expression."""
        raise NotImplementedError

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Evaluate with symbol values drawn from ``env``.

        ``env`` may map names to floats, intervals, affine forms, Taylor
        models or histogram PDFs — anything supporting the arithmetic
        operators used by the expression.  A missing symbol raises
        :class:`ExpressionError`.
        """
        raise NotImplementedError

    def expand(self) -> "RationalExpression":
        """Expand into a ratio of canonical polynomials."""
        raise NotImplementedError

    def to_polynomial(self) -> "Polynomial":
        """Expand into a single polynomial (fails if a true division remains)."""
        rational = self.expand()
        if not rational.denominator.is_constant():
            raise ExpressionError("expression is a proper rational function, not a polynomial")
        scale = rational.denominator.constant_value()
        if scale == 0.0:
            raise ExpressionError("expression denominator is identically zero")
        return rational.numerator.scale(1.0 / scale)

    def depth(self) -> int:
        """Height of the expression tree (constants/symbols have depth 1)."""
        raise NotImplementedError

    def count_operations(self) -> int:
        """Number of arithmetic operator nodes in the tree."""
        raise NotImplementedError


class Constant(Expression):
    """A literal real constant."""

    __slots__ = ("value",)

    def __init__(self, value: Number) -> None:
        value = float(value)
        if math.isnan(value):
            raise ExpressionError("constant must not be NaN")
        self.value = value

    def symbols(self) -> frozenset[str]:
        return frozenset()

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.value

    def expand(self) -> "RationalExpression":
        return RationalExpression(Polynomial.constant(self.value), Polynomial.constant(1.0))

    def depth(self) -> int:
        return 1

    def count_operations(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.value:g}"


class Symbol(Expression):
    """A named symbol (noise symbol or uncertain input)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ExpressionError("symbol name must be non-empty")
        self.name = str(name)

    def symbols(self) -> frozenset[str]:
        return frozenset({self.name})

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        if self.name not in env:
            raise ExpressionError(f"no value provided for symbol {self.name!r}")
        return env[self.name]

    def expand(self) -> "RationalExpression":
        return RationalExpression(Polynomial.symbol(self.name), Polynomial.constant(1.0))

    def depth(self) -> int:
        return 1

    def count_operations(self) -> int:
        return 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class _BinaryOp(Expression):
    __slots__ = ("left", "right")
    _symbol = "?"

    def __init__(self, left: Expression, right: Expression) -> None:
        self.left = left
        self.right = right

    def symbols(self) -> frozenset[str]:
        return self.left.symbols() | self.right.symbols()

    def depth(self) -> int:
        return 1 + max(self.left.depth(), self.right.depth())

    def count_operations(self) -> int:
        return 1 + self.left.count_operations() + self.right.count_operations()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.left!r} {self._symbol} {self.right!r})"


class Add(_BinaryOp):
    """Sum of two sub-expressions."""

    _symbol = "+"

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.left.evaluate(env) + self.right.evaluate(env)

    def expand(self) -> "RationalExpression":
        return self.left.expand() + self.right.expand()


class Sub(_BinaryOp):
    """Difference of two sub-expressions."""

    _symbol = "-"

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.left.evaluate(env) - self.right.evaluate(env)

    def expand(self) -> "RationalExpression":
        return self.left.expand() - self.right.expand()


class Mul(_BinaryOp):
    """Product of two sub-expressions."""

    _symbol = "*"

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.left.evaluate(env) * self.right.evaluate(env)

    def expand(self) -> "RationalExpression":
        return self.left.expand() * self.right.expand()


class Div(_BinaryOp):
    """Quotient of two sub-expressions."""

    _symbol = "/"

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return self.left.evaluate(env) / self.right.evaluate(env)

    def expand(self) -> "RationalExpression":
        return self.left.expand() / self.right.expand()


class Neg(Expression):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: Expression) -> None:
        self.operand = operand

    def symbols(self) -> frozenset[str]:
        return self.operand.symbols()

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        return -self.operand.evaluate(env)

    def expand(self) -> "RationalExpression":
        return -self.operand.expand()

    def depth(self) -> int:
        return 1 + self.operand.depth()

    def count_operations(self) -> int:
        return 1 + self.operand.count_operations()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"(-{self.operand!r})"


class Pow(Expression):
    """Integer power of a sub-expression.

    Powers are kept as a dedicated node (rather than repeated
    multiplication) so that interval-like algebras can use their
    dependency-aware ``**`` operator — e.g. ``x ** 2`` of an interval
    straddling zero is ``[0, ...]`` instead of the pessimistic
    ``x * x``.
    """

    __slots__ = ("operand", "exponent")

    def __init__(self, operand: Expression, exponent: int) -> None:
        if not isinstance(exponent, int) or exponent < 0:
            raise ExpressionError(
                f"only non-negative integer powers are supported, got {exponent!r}"
            )
        self.operand = operand
        self.exponent = exponent

    def symbols(self) -> frozenset[str]:
        return self.operand.symbols() if self.exponent > 0 else frozenset()

    def evaluate(self, env: Mapping[str, Any]) -> Any:
        if self.exponent == 0:
            return 1.0
        value = self.operand.evaluate(env)
        if hasattr(value, "square") and self.exponent == 2:
            return value.square()
        return value ** self.exponent

    def expand(self) -> "RationalExpression":
        result = RationalExpression(Polynomial.constant(1.0), Polynomial.constant(1.0))
        base = self.operand.expand()
        for _ in range(self.exponent):
            result = result * base
        return result

    def depth(self) -> int:
        return 1 + self.operand.depth()

    def count_operations(self) -> int:
        return 1 + self.operand.count_operations()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.operand!r} ** {self.exponent})"


# ---------------------------------------------------------------------- #
# canonical polynomial form
# ---------------------------------------------------------------------- #
class Polynomial:
    """A multivariate polynomial in symbols, stored as monomial -> coefficient.

    A monomial key is a tuple of ``(symbol, exponent)`` pairs sorted by
    symbol name; the empty tuple is the constant term.
    """

    __slots__ = ("terms",)

    def __init__(self, terms: Mapping[Monomial, Number] | None = None) -> None:
        cleaned: Dict[Monomial, float] = {}
        for monomial, coeff in (terms or {}).items():
            coeff = float(coeff)
            if coeff == 0.0:
                continue
            key = tuple(sorted((str(s), int(p)) for s, p in monomial if int(p) != 0))
            cleaned[key] = cleaned.get(key, 0.0) + coeff
        self.terms = {k: v for k, v in cleaned.items() if v != 0.0}

    # -- constructors --------------------------------------------------- #
    @classmethod
    def constant(cls, value: Number) -> "Polynomial":
        """The constant polynomial ``value``."""
        return cls({(): float(value)} if float(value) != 0.0 else {})

    @classmethod
    def symbol(cls, name: str) -> "Polynomial":
        """The polynomial consisting of a single symbol."""
        return cls({((str(name), 1),): 1.0})

    # -- queries --------------------------------------------------------- #
    def symbols(self) -> frozenset[str]:
        """All symbols with a non-zero coefficient somewhere."""
        names: set[str] = set()
        for monomial in self.terms:
            for name, _power in monomial:
                names.add(name)
        return frozenset(names)

    def degree(self) -> int:
        """Total degree (0 for constants and the zero polynomial)."""
        if not self.terms:
            return 0
        return max(sum(power for _name, power in monomial) for monomial in self.terms)

    def is_constant(self) -> bool:
        """True when no symbol appears."""
        return all(not monomial for monomial in self.terms)

    def constant_value(self) -> float:
        """The constant term (the whole value if :meth:`is_constant`)."""
        return self.terms.get((), 0.0)

    def coefficient(self, monomial: Iterable[Tuple[str, int]]) -> float:
        """Coefficient of the given monomial (0 when absent)."""
        key = tuple(sorted((str(s), int(p)) for s, p in monomial if int(p) != 0))
        return self.terms.get(key, 0.0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polynomial):
            return NotImplemented
        return self.terms == other.terms

    def __hash__(self) -> int:
        return hash(frozenset(self.terms.items()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.terms:
            return "Polynomial(0)"
        parts = []
        for monomial in sorted(self.terms, key=lambda m: (sum(p for _s, p in m), m)):
            coeff = self.terms[monomial]
            factors = "*".join(f"{s}^{p}" if p > 1 else s for s, p in monomial)
            parts.append(f"{coeff:+g}" + (f"*{factors}" if factors else ""))
        return f"Polynomial({' '.join(parts)})"

    # -- arithmetic ------------------------------------------------------ #
    def __add__(self, other: "Polynomial | Number") -> "Polynomial":
        other = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        terms = dict(self.terms)
        for monomial, coeff in other.terms.items():
            terms[monomial] = terms.get(monomial, 0.0) + coeff
        return Polynomial(terms)

    __radd__ = __add__

    def __neg__(self) -> "Polynomial":
        return Polynomial({m: -c for m, c in self.terms.items()})

    def __sub__(self, other: "Polynomial | Number") -> "Polynomial":
        other = other if isinstance(other, Polynomial) else Polynomial.constant(other)
        return self + (-other)

    def __rsub__(self, other: "Polynomial | Number") -> "Polynomial":
        return (-self) + other

    def scale(self, factor: Number) -> "Polynomial":
        """Multiply every coefficient by ``factor``."""
        return Polynomial({m: c * float(factor) for m, c in self.terms.items()})

    @staticmethod
    def _merge_monomials(a: Monomial, b: Monomial) -> Monomial:
        powers: Dict[str, int] = {}
        for name, power in a:
            powers[name] = powers.get(name, 0) + power
        for name, power in b:
            powers[name] = powers.get(name, 0) + power
        return tuple(sorted((n, p) for n, p in powers.items() if p != 0))

    def __mul__(self, other: "Polynomial | Number") -> "Polynomial":
        if isinstance(other, (int, float)):
            return self.scale(other)
        terms: Dict[Monomial, float] = {}
        for mono_a, coeff_a in self.terms.items():
            for mono_b, coeff_b in other.terms.items():
                key = self._merge_monomials(mono_a, mono_b)
                terms[key] = terms.get(key, 0.0) + coeff_a * coeff_b
        return Polynomial(terms)

    __rmul__ = __mul__

    def __pow__(self, exponent: int) -> "Polynomial":
        if not isinstance(exponent, int) or exponent < 0:
            raise ExpressionError(
                f"only non-negative integer powers are supported, got {exponent!r}"
            )
        result = Polynomial.constant(1.0)
        base = self
        power = exponent
        while power:
            if power & 1:
                result = result * base
            power >>= 1
            if power:
                base = base * base
        return result

    # -- evaluation ------------------------------------------------------ #
    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Evaluate in any algebra supporting ``+ * **`` with numbers.

        Symbol powers use the algebra's own ``**`` (or ``.square()`` for
        exponent 2 when available) so interval-like algebras keep the
        dependency refinement of even powers.
        """
        total: Any = 0.0
        for monomial, coeff in self.terms.items():
            term: Any = coeff
            for name, power in monomial:
                if name not in env:
                    raise ExpressionError(f"no value provided for symbol {name!r}")
                value = env[name]
                if power == 2 and hasattr(value, "square"):
                    factor = value.square()
                elif power == 1:
                    factor = value
                else:
                    factor = value ** power
                term = factor * term
            total = total + term
        return total

    def gradient(self) -> Dict[str, "Polynomial"]:
        """Partial derivatives with respect to every symbol."""
        grads: Dict[str, Polynomial] = {}
        for name in self.symbols():
            terms: Dict[Monomial, float] = {}
            for monomial, coeff in self.terms.items():
                powers = dict(monomial)
                power = powers.get(name, 0)
                if power == 0:
                    continue
                new_powers = dict(powers)
                new_powers[name] = power - 1
                key = tuple(sorted((n, p) for n, p in new_powers.items() if p != 0))
                terms[key] = terms.get(key, 0.0) + coeff * power
            grads[name] = Polynomial(terms)
        return grads


class RationalExpression:
    """A ratio of two polynomials — Equation (1)'s ``Fx``."""

    __slots__ = ("numerator", "denominator")

    def __init__(self, numerator: Polynomial, denominator: Polynomial) -> None:
        if not denominator.terms:
            raise ExpressionError("denominator polynomial is identically zero")
        self.numerator = numerator
        self.denominator = denominator
        self._normalize()

    def _normalize(self) -> None:
        if self.denominator.is_constant():
            value = self.denominator.constant_value()
            if value != 1.0 and value != 0.0:
                self.numerator = self.numerator.scale(1.0 / value)
                self.denominator = Polynomial.constant(1.0)

    # -- queries --------------------------------------------------------- #
    def symbols(self) -> frozenset[str]:
        """All symbols of numerator and denominator."""
        return self.numerator.symbols() | self.denominator.symbols()

    def is_polynomial(self) -> bool:
        """True when the denominator is the constant 1."""
        return self.denominator.is_constant() and self.denominator.constant_value() == 1.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RationalExpression({self.numerator!r} / {self.denominator!r})"

    # -- arithmetic ------------------------------------------------------ #
    def __add__(self, other: "RationalExpression") -> "RationalExpression":
        return RationalExpression(
            self.numerator * other.denominator + other.numerator * self.denominator,
            self.denominator * other.denominator,
        )

    def __sub__(self, other: "RationalExpression") -> "RationalExpression":
        return RationalExpression(
            self.numerator * other.denominator - other.numerator * self.denominator,
            self.denominator * other.denominator,
        )

    def __neg__(self) -> "RationalExpression":
        return RationalExpression(-self.numerator, self.denominator)

    def __mul__(self, other: "RationalExpression") -> "RationalExpression":
        return RationalExpression(
            self.numerator * other.numerator, self.denominator * other.denominator
        )

    def __truediv__(self, other: "RationalExpression") -> "RationalExpression":
        if not other.numerator.terms:
            raise ExpressionError("division by an identically zero expression")
        return RationalExpression(
            self.numerator * other.denominator, self.denominator * other.numerator
        )

    # -- evaluation ------------------------------------------------------ #
    def evaluate(self, env: Mapping[str, Any]) -> Any:
        """Evaluate numerator and denominator, then divide (if needed)."""
        numerator = self.numerator.evaluate(env)
        if self.is_polynomial():
            return numerator
        return numerator / self.denominator.evaluate(env)
